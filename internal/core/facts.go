package core

import (
	"slices"
	"sort"

	"pfuzzer/internal/trace"
)

// traceOpts is the recording configuration both engines execute
// subjects under. The ordered block sequence is off: the search only
// consumes the first-hit block set, the comparisons, and the path
// hash, and skipping the sequence keeps per-execution allocation (and
// the per-worker sinks) small.
func traceOpts() trace.Options { return trace.Options{Comparisons: true} }

// runFacts is the distilled outcome of one subject execution: every
// datum the campaign algorithm consumes, copied out of the (possibly
// sink-backed, reusable) trace record. Extracting facts immediately
// after the run is what lets executors reuse their trace buffers and
// ship a compact value to the scheduler instead of the full record.
type runFacts struct {
	input     []byte
	accepted  bool
	pathHash  uint64
	blocks    []uint32           // distinct covered blocks (coverage merge)
	trimmed   []uint32           // blocks first hit before the final comparison
	stack     float64            // avg stack depth of the last two comparisons
	lastComps []trace.Comparison // comparisons ending at the last compared index
}

// factsOf distills rec into a runFacts, copying only what the
// campaign can consume so the hot path stays allocation-light:
//
//   - Rejected primary runs (the most common outcome by far) feed
//     nothing but the path-frequency map — children are derived from
//     their extension run — so with deriving == false only the cheap
//     scalars are kept.
//   - Runs children are derived from (deriving == true, and every
//     accepted run, since a valid input with new coverage spawns
//     children directly) additionally carry the trimmed parent
//     blocks, the stack average, and the final-index comparisons.
//   - Only accepted runs carry the full block set; it exists to merge
//     valid-input coverage.
//
// The trimming of the parent block set follows the paper's §3.1 rule
// as adjusted for interleaved lexers (see DESIGN.md §4): blocks first
// hit after the final comparison — error handling — do not count
// towards a child's new-coverage score.
func factsOf(rec *trace.Record, deriving bool) *runFacts {
	return factsOfInto(new(runFacts), rec, deriving)
}

// factsOfInto is factsOf distilling into a caller-owned struct — the
// trajectory passes its per-Fuzzer scratch (see runFactsInto for why
// that is sound), the speculative workers a fresh struct, since their
// memo entries outlive the distilling call.
func factsOfInto(rf *runFacts, rec *trace.Record, deriving bool) *runFacts {
	*rf = runFacts{
		input:    rec.Input,
		accepted: rec.Accepted(),
		pathHash: rec.PathHash,
	}
	if rf.accepted {
		rf.blocks = make([]uint32, 0, len(rec.BlockFirst))
		for id := range rec.BlockFirst {
			rf.blocks = append(rf.blocks, id)
		}
		slices.Sort(rf.blocks) // sort.Slice would allocate its closure + swapper per call
	}
	if deriving || rf.accepted {
		rf.stack = rec.AvgStackLastTwo()
		// Blocks first hit before the final comparison, collected
		// straight into the slice: the map BlocksBeforeSeq would
		// allocate per execution buys nothing here, and this runs for
		// every deriving execution — and, with the cache enabled, for
		// every miss.
		cut := int(^uint(0) >> 1)
		if n := len(rec.Comparisons); n > 0 {
			cut = rec.Comparisons[n-1].Seq + 1
		}
		rf.trimmed = make([]uint32, 0, len(rec.BlockFirst))
		for id, s := range rec.BlockFirst {
			if s < cut {
				rf.trimmed = append(rf.trimmed, id)
			}
		}
		slices.Sort(rf.trimmed)
		// The final-index comparisons are the one piece of the record
		// the engine retains beyond the execution (candidates alias
		// their replacement bytes; cache entries store them in derived
		// facts), while the record's comparison bytes live in the
		// sink's reusable arena — so copy the selected comparisons out,
		// with all their byte payloads packed into one fresh blob.
		last := rec.LastComparedIndex()
		n, total := 0, 0
		for i := range rec.Comparisons {
			if c := &rec.Comparisons[i]; c.Last == last {
				n++
				total += len(c.Actual) + len(c.Expected)
			}
		}
		if n > 0 {
			out := make([]trace.Comparison, 0, n)
			blob := make([]byte, 0, total)
			for i := range rec.Comparisons {
				c := rec.Comparisons[i]
				if c.Last != last {
					continue
				}
				blob = append(blob, c.Actual...)
				c.Actual = blob[len(blob)-len(c.Actual) : len(blob) : len(blob)]
				blob = append(blob, c.Expected...)
				c.Expected = blob[len(blob)-len(c.Expected) : len(blob) : len(blob)]
				out = append(out, c)
			}
			rf.lastComps = out
		}
	}
	return rf
}

// pruner is the queue surface the prune-with-hysteresis rule needs;
// both the serial engine's exact Queue and the parallel engine's
// Sharded queue satisfy it.
type pruner interface {
	Len() int
	Prune(max int)
}

// pruneIfOvergrown bounds q to MaxQueue with hysteresis: draining a
// heap is O(max·log n), so prune only when the queue has grown half
// again past its bound. Both engines share this rule so they cannot
// silently drift apart.
func (f *Fuzzer) pruneIfOvergrown(q pruner) {
	if q.Len() > f.cfg.MaxQueue+f.cfg.MaxQueue/2 {
		q.Prune(f.cfg.MaxQueue)
	}
}

// blockSet is a dense coverage set over block IDs. The score loop
// probes it once per parent block per candidate per re-scoring pass —
// the hottest lookup in the whole engine — so membership must be an
// array index, not a map probe. Subjects number their blocks densely
// from 0 (registry contract), so the backing slice stays small; a
// pathological ID beyond the growth cap spills into the overflow map
// rather than allocating gigabytes.
type blockSet struct {
	dense    []bool
	overflow map[uint32]bool
}

// blockSetGrowCap bounds the dense tier (4 MiB of bools).
const blockSetGrowCap = 1 << 22

func (s *blockSet) has(id uint32) bool {
	if int64(id) < int64(len(s.dense)) {
		return s.dense[id]
	}
	return s.overflow[id]
}

func (s *blockSet) add(id uint32) {
	if int64(id) >= int64(len(s.dense)) {
		if id >= blockSetGrowCap {
			if s.overflow == nil {
				s.overflow = make(map[uint32]bool)
			}
			s.overflow[id] = true
			return
		}
		grown := make([]bool, id+1)
		copy(grown, s.dense)
		s.dense = grown
	}
	s.dense[id] = true
}

// ids returns the member IDs in ascending order. The dense tier comes
// out ascending by construction; overflow IDs are sorted before the
// append so sets with pathological members serialize identically
// run-to-run.
func (s *blockSet) ids() []uint32 {
	var out []uint32
	for id, set := range s.dense {
		if set {
			out = append(out, uint32(id))
		}
	}
	if len(s.overflow) > 0 {
		spill := make([]uint32, 0, len(s.overflow))
		for id := range s.overflow {
			spill = append(spill, id)
		}
		sort.Slice(spill, func(i, j int) bool { return spill[i] < spill[j] })
		out = append(out, spill...)
	}
	return out
}

// hasNewIDs reports whether any of ids is not yet covered by a valid
// input.
func (f *Fuzzer) hasNewIDs(ids []uint32) bool {
	for _, id := range ids {
		if !f.vBr.has(id) {
			return true
		}
	}
	return false
}

// recordLength emits an accepted mined-lineage run as a valid input
// when it sets a new length record, without granting it the search
// treatment of a new-coverage valid. The paper's emission rule is new
// block coverage; the mining phase exists to reach deep, recursive
// inputs that are longer re-combinations of already-covered
// constructs, for which coverage novelty is the wrong filter. Two
// restrictions keep the relaxation from perturbing the search:
// lineage-only (ordinary exploration inputs never qualify — emitting
// a boring accepted prefix would stop its extension retries, which is
// where exploration progress comes from), and the strictly-increasing
// longestValid ratchet bounds the volume.
func (f *Fuzzer) recordLength(rf *runFacts, mineGen int) {
	if f.cfg.MinePhase && mineGen > 0 && rf.accepted && len(rf.input) > f.longestValid {
		f.emitValid(rf)
	}
}

// emitValid records rf as a newly found valid input: it appends it to
// the result (deduplicated), merges its blocks into the result
// coverage and into vBr, and emits an EventValid. Re-scoring
// the queue against the grown vBr is the caller's business — the
// serial engine re-scores immediately (the paper's per-valid pass),
// the scheduler defers it to the next generation merge.
func (f *Fuzzer) emitValid(rf *runFacts) {
	key := string(rf.input)
	if _, dup := f.validSeen[key]; !dup {
		f.validSeen[key] = struct{}{}
		newBlocks := 0
		for _, id := range rf.blocks {
			if !f.res.Coverage[id] {
				f.res.Coverage[id] = true
				newBlocks++
			}
		}
		v := Valid{
			Input:     append([]byte{}, rf.input...),
			NewBlocks: newBlocks,
			Exec:      f.res.Execs,
		}
		f.res.Valids = append(f.res.Valids, v)
		if len(v.Input) > f.longestValid {
			f.longestValid = len(v.Input)
		}
		f.emit(Event{Kind: EventValid, Input: v.Input, Execs: v.Exec, NewBlocks: v.NewBlocks})
	}
	for _, id := range rf.blocks {
		f.vBr.add(id)
	}
	f.vbrGen++ // parent coverage memos are stale now
}

// addChildren derives one successor input per comparison made to the
// last compared character and hands it to push, tagging each child
// with the parent's mined lineage bumped by one (mineGen 0 stays 0:
// ordinary candidates have no lineage) (Algorithm 1,
// addInputs). Substituting only at the failing index is what the
// paper describes throughout: "the fuzzer then corrects the invalid
// character to pass one of the character comparisons that was made at
// that index" (§1), "the mutations always occur at the last index
// where the comparison failed" (§6.2). The replacement is one of the
// values the character was compared against; range and set
// comparisons pick a random member, so repeated executions of the
// same comparison explore different members. For a comparison
// spanning input[s..e], the successor is input[:s] + expected +
// input[e+1:]; for wrapped strcmp comparisons the whole literal is
// substituted, which is how keywords enter the inputs.
func (f *Fuzzer) addChildren(rf *runFacts, depth, parentMineGen int, push func(*candidate)) {
	childGen := 0
	if parentMineGen > 0 {
		childGen = parentMineGen + 1
	}
	// One shared parentFacts for all of rf's children: siblings score
	// identically on every parent-derived term, so the score memos
	// (see parentFacts) amortize across them.
	pf := &parentFacts{blks: rf.trimmed, stack: rf.stack, path: rf.pathHash}
	for i := range rf.lastComps {
		c := &rf.lastComps[i]
		cand, ok := f.pick(c)
		if !ok {
			continue
		}
		if c.Matched && len(cand) == len(c.Actual) && string(cand) == string(c.Actual) {
			continue // no-op substitution
		}
		child := substitute(rf.input, c, cand)
		if len(child) > f.cfg.MaxLen {
			continue
		}
		key := string(child)
		if _, dup := f.seen[key]; dup {
			continue
		}
		f.seen[key] = struct{}{}
		push(&candidate{
			input:       child,
			replacement: cand,
			parent:      pf,
			parents:     depth,
			mineGen:     childGen,
		})
	}
}
