package core

import (
	"testing"

	"pfuzzer/internal/core/coretest"
	"pfuzzer/internal/subjects/expr"
	"pfuzzer/internal/subjects/paren"
)

// TestFuzzExprFindsValidInputs reproduces the §2 walkthrough: starting
// from nothing, the fuzzer must synthesize valid arithmetic
// expressions within a modest execution budget.
func TestFuzzExprFindsValidInputs(t *testing.T) {
	f := New(expr.New(), Config{Seed: 1, MaxExecs: 4000})
	res := f.Run()
	if len(res.Valids) == 0 {
		t.Fatalf("no valid inputs after %d execs", res.Execs)
	}
	for _, v := range res.Valids {
		rec := coretest.ExecFull(expr.New(), v.Input)
		if !rec.Accepted() {
			t.Errorf("emitted input %q is not accepted by the parser", v.Input)
		}
	}
	t.Logf("valids=%d execs=%d first=%q", len(res.Valids), res.Execs, res.Valids[0].Input)
}

// TestFuzzExprCoversTokens checks input coverage: the fuzzer should
// discover every expr token (numbers, +, -, parentheses).
func TestFuzzExprCoversTokens(t *testing.T) {
	f := New(expr.New(), Config{Seed: 7, MaxExecs: 20000})
	res := f.Run()
	found := map[string]bool{}
	for _, v := range res.Valids {
		for tok := range expr.Tokenize(v.Input) {
			found[tok] = true
		}
	}
	for _, want := range []string{"number", "+", "-", "(", ")"} {
		if !found[want] {
			t.Errorf("token %q never produced; valids=%d", want, len(res.Valids))
		}
	}
}

// TestFuzzParenClosesBrackets exercises the §3 motivation: the
// heuristic must close bracket structures rather than opening forever.
func TestFuzzParenClosesBrackets(t *testing.T) {
	f := New(paren.New(), Config{Seed: 3, MaxExecs: 20000})
	res := f.Run()
	if len(res.Valids) == 0 {
		t.Fatalf("no valid bracket inputs after %d execs", res.Execs)
	}
	kinds := map[string]bool{}
	for _, v := range res.Valids {
		for tok := range paren.Tokenize(v.Input) {
			kinds[tok] = true
		}
	}
	if len(kinds) < 4 {
		t.Errorf("expected at least 4 distinct bracket tokens, got %v", kinds)
	}
}

// TestEmittedInputsAreUnique verifies the valid-input dedup.
func TestEmittedInputsAreUnique(t *testing.T) {
	f := New(expr.New(), Config{Seed: 11, MaxExecs: 5000})
	res := f.Run()
	seen := map[string]bool{}
	for _, v := range res.Valids {
		if seen[string(v.Input)] {
			t.Errorf("duplicate valid input %q", v.Input)
		}
		seen[string(v.Input)] = true
	}
}

// TestDeterministicUnderSeed verifies that equal seeds produce equal
// campaigns.
func TestDeterministicUnderSeed(t *testing.T) {
	run := func() []string {
		f := New(expr.New(), Config{Seed: 42, MaxExecs: 3000})
		res := f.Run()
		out := make([]string, len(res.Valids))
		for i, v := range res.Valids {
			out[i] = string(v.Input)
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
}
