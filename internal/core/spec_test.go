package core

import (
	"math/rand"
	"testing"

	"pfuzzer/internal/subjects/cjson"
	"pfuzzer/internal/subjects/expr"
	"pfuzzer/internal/subjects/paren"
)

// TestParallelMatchesSerial pins the speculative engine's core
// contract: for any worker count, the campaign result is bit-for-bit
// the serial engine's — same corpus at the same execution indices,
// same coverage, same fingerprint — because the trajectory goroutine
// runs the exact serial algorithm and workers only prefetch
// executions. This is strictly stronger than the corpus
// set-equivalence the bench gate checks.
func TestParallelMatchesSerial(t *testing.T) {
	subjects := []struct {
		name string
		run  func(workers int) *Result
	}{
		{"expr", func(w int) *Result {
			return New(expr.New(), Config{Seed: 42, MaxExecs: 3000, Workers: w}).Run()
		}},
		{"cjson", func(w int) *Result {
			return New(cjson.New(), Config{Seed: 7, MaxExecs: 4000, Workers: w}).Run()
		}},
		{"paren-nocache", func(w int) *Result {
			return New(paren.New(), Config{Seed: 3, MaxExecs: 3000, Workers: w, Cache: CacheOff}).Run()
		}},
	}
	for _, s := range subjects {
		t.Run(s.name, func(t *testing.T) {
			serial := s.run(1)
			for _, w := range []int{2, 4} {
				par := s.run(w)
				if got, want := par.Fingerprint(), serial.Fingerprint(); got != want {
					t.Errorf("workers=%d fingerprint %#x, serial %#x (execs %d vs %d, valids %d vs %d)",
						w, got, want, par.Execs, serial.Execs, len(par.Valids), len(serial.Valids))
				}
				if par.CacheHits != serial.CacheHits || par.CacheMisses != serial.CacheMisses {
					t.Errorf("workers=%d cache counters (%d hits, %d misses), serial (%d, %d)",
						w, par.CacheHits, par.CacheMisses, serial.CacheHits, serial.CacheMisses)
				}
			}
		})
	}
}

// TestBatchSizeInvariant pins the batched hand-off's determinism knob:
// BatchSize shapes only how much speculation each board publish
// announces, never the trajectory, so results are bit-identical
// across batch sizes — on the serial engine (where the knob is inert)
// and on the concurrent engine alike.
func TestBatchSizeInvariant(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var want uint64
		for i, batch := range []int{0, 1, 4, 64} {
			res := New(expr.New(), Config{Seed: 42, MaxExecs: 3000, Workers: workers, BatchSize: batch}).Run()
			if i == 0 {
				want = res.Fingerprint()
				continue
			}
			if got := res.Fingerprint(); got != want {
				t.Errorf("workers=%d batch=%d fingerprint %#x, want %#x", workers, batch, got, want)
			}
		}
	}
}

// TestParallelRetireMilestonesDeterministic pins the adaptive cache
// retirement under concurrency: hit/miss counters — and therefore the
// CacheAuto milestones and the retire decision — are trajectory state,
// computed in trajectory order no matter how many workers speculate,
// so they must be equal across worker counts at every budget. expr's
// hit rate sits under the retire threshold (BENCH_pr5: 13%), so the
// budget below crosses the first milestone and actually retires.
func TestParallelRetireMilestonesDeterministic(t *testing.T) {
	run := func(w int) *Result {
		return New(expr.New(), Config{Seed: 9, MaxExecs: 12000, Workers: w, Cache: CacheAuto}).Run()
	}
	serial := run(1)
	if !serial.CacheRetired {
		t.Fatalf("serial campaign did not retire the cache (hit rate %.2f); the test needs a retiring workload",
			serial.CacheHitRate())
	}
	for _, w := range []int{2, 4} {
		par := run(w)
		if par.CacheRetired != serial.CacheRetired ||
			par.CacheHits != serial.CacheHits || par.CacheMisses != serial.CacheMisses {
			t.Errorf("workers=%d: retired=%v hits=%d misses=%d, serial retired=%v hits=%d misses=%d",
				w, par.CacheRetired, par.CacheHits, par.CacheMisses,
				serial.CacheRetired, serial.CacheHits, serial.CacheMisses)
		}
		if par.Fingerprint() != serial.Fingerprint() {
			t.Errorf("workers=%d fingerprint diverged across the retire milestone", w)
		}
	}
}

// TestSpecDiagnostics sanity-checks the speculation counters: a
// Workers>1 campaign on a subject with a consumable pipeline should
// both run and consume speculative executions, and consumed entries
// can never exceed run ones.
func TestSpecDiagnostics(t *testing.T) {
	res := New(expr.New(), Config{Seed: 42, MaxExecs: 3000, Workers: 2}).Run()
	if res.SpecExecs == 0 {
		t.Error("Workers=2 campaign ran no speculative executions")
	}
	if res.SpecHits > res.SpecExecs {
		t.Errorf("SpecHits %d exceeds SpecExecs %d", res.SpecHits, res.SpecExecs)
	}
	serial := New(expr.New(), Config{Seed: 42, MaxExecs: 3000, Workers: 1}).Run()
	if serial.SpecExecs != 0 || serial.SpecHits != 0 {
		t.Errorf("serial campaign reports speculation (%d execs, %d hits)", serial.SpecExecs, serial.SpecHits)
	}
}

// TestSpecDepthInvariant pins the shadow simulator's determinism knob,
// mirroring TestBatchSizeInvariant: SpecDepth shapes only how far
// ahead the trajectory's future is predicted (and therefore how much
// the workers prefetch), never the trajectory itself, so results are
// bit-identical across depths — off, default, shallow and deep — on
// the serial engine (where the knob is inert) and on the concurrent
// engine alike. The cache counters are compared too: a prediction that
// admitted an execution the serial schedule wouldn't run would distort
// them before it distorted the corpus.
func TestSpecDepthInvariant(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var want *Result
		for i, depth := range []int{-1, 0, 1, 4, 16} {
			res := New(expr.New(), Config{Seed: 42, MaxExecs: 3000, Workers: workers, SpecDepth: depth}).Run()
			if i == 0 {
				want = res
				continue
			}
			if got, ref := res.Fingerprint(), want.Fingerprint(); got != ref {
				t.Errorf("workers=%d spec-depth=%d fingerprint %#x, want %#x", workers, depth, got, ref)
			}
			if res.CacheHits != want.CacheHits || res.CacheMisses != want.CacheMisses {
				t.Errorf("workers=%d spec-depth=%d cache counters (%d hits, %d misses), want (%d, %d)",
					workers, depth, res.CacheHits, res.CacheMisses, want.CacheHits, want.CacheMisses)
			}
		}
	}
}

// TestShadowCursorMatchesRand pins the shadow RNG clone bit-for-bit
// against the campaign's real stream: a shadowCursor positioned at the
// campaign's draw counter must predict exactly the values rand.Rand
// will produce from the countedSource — including Intn's rejection
// loop and power-of-two fast path — for the prediction of extension
// characters to ever land. The ns mix power-of-two and odd moduli, and
// the cursor predicts each value BEFORE the campaign stream draws it,
// with periodic discards mimicking the per-publish sync.
func TestShadowCursorMatchesRand(t *testing.T) {
	const seed = 99
	cs := &countedSource{src: rand.NewSource(seed)}
	rng := rand.New(cs)
	sh := newShadowDraws(seed)
	ns := []int{98, 3, 16, 255, 7, 1 << 20, 2, 97, 1, 12345}
	for i := 0; i < 5000; i++ {
		n := ns[i%len(ns)]
		sh.discard(cs.draws)
		cur := shadowCursor{s: sh, pos: cs.draws}
		predicted := cur.intn(n)
		if got := rng.Intn(n); got != predicted {
			t.Fatalf("draw %d: Intn(%d) = %d, shadow predicted %d", i, n, got, predicted)
		}
		if cs.draws != cur.pos {
			t.Fatalf("draw %d: campaign consumed %d draws, shadow accounted %d", i, cs.draws, cur.pos)
		}
	}
}

// TestShadowPredictIsReadOnly pins the conformance property behind
// every invariant above: the simulator reads campaign state and writes
// none of it — same draw counter, same queue, and identical output on
// a repeated call — so a prediction can never admit an execution (or
// any state transition) the serial schedule wouldn't make; a wrong
// prediction is merely an announcement nobody consumes.
func TestShadowPredictIsReadOnly(t *testing.T) {
	f := New(expr.New(), Config{Seed: 5, MaxExecs: 400})
	f.Run() // populate queue, cursor and RNG position mid-search state
	snap := func() []shadowCand {
		var s []shadowCand
		f.queue.PeekNScored(8, func(cd *candidate, score float64) {
			s = append(s, shadowCand{input: cd.input, score: score, ord: len(s)})
		})
		return s
	}
	drawsBefore, queueBefore := f.cs.draws, f.queue.Len()
	first := f.shadowPredict(nil, snap(), 16)
	second := f.shadowPredict(nil, snap(), 16)
	if len(first) == 0 {
		t.Fatal("depth-16 prediction produced no tasks")
	}
	if len(first) != len(second) {
		t.Fatalf("repeated prediction sized %d, then %d", len(first), len(second))
	}
	for i := range first {
		if string(first[i]) != string(second[i]) {
			t.Fatalf("task %d: %q, then %q", i, first[i], second[i])
		}
	}
	if f.cs.draws != drawsBefore || f.queue.Len() != queueBefore {
		t.Fatalf("prediction mutated campaign state: draws %d->%d, queue %d->%d",
			drawsBefore, f.cs.draws, queueBefore, f.queue.Len())
	}
}
