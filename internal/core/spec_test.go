package core

import (
	"testing"

	"pfuzzer/internal/subjects/cjson"
	"pfuzzer/internal/subjects/expr"
	"pfuzzer/internal/subjects/paren"
)

// TestParallelMatchesSerial pins the speculative engine's core
// contract: for any worker count, the campaign result is bit-for-bit
// the serial engine's — same corpus at the same execution indices,
// same coverage, same fingerprint — because the trajectory goroutine
// runs the exact serial algorithm and workers only prefetch
// executions. This is strictly stronger than the corpus
// set-equivalence the bench gate checks.
func TestParallelMatchesSerial(t *testing.T) {
	subjects := []struct {
		name string
		run  func(workers int) *Result
	}{
		{"expr", func(w int) *Result {
			return New(expr.New(), Config{Seed: 42, MaxExecs: 3000, Workers: w}).Run()
		}},
		{"cjson", func(w int) *Result {
			return New(cjson.New(), Config{Seed: 7, MaxExecs: 4000, Workers: w}).Run()
		}},
		{"paren-nocache", func(w int) *Result {
			return New(paren.New(), Config{Seed: 3, MaxExecs: 3000, Workers: w, Cache: CacheOff}).Run()
		}},
	}
	for _, s := range subjects {
		t.Run(s.name, func(t *testing.T) {
			serial := s.run(1)
			for _, w := range []int{2, 4} {
				par := s.run(w)
				if got, want := par.Fingerprint(), serial.Fingerprint(); got != want {
					t.Errorf("workers=%d fingerprint %#x, serial %#x (execs %d vs %d, valids %d vs %d)",
						w, got, want, par.Execs, serial.Execs, len(par.Valids), len(serial.Valids))
				}
				if par.CacheHits != serial.CacheHits || par.CacheMisses != serial.CacheMisses {
					t.Errorf("workers=%d cache counters (%d hits, %d misses), serial (%d, %d)",
						w, par.CacheHits, par.CacheMisses, serial.CacheHits, serial.CacheMisses)
				}
			}
		})
	}
}

// TestBatchSizeInvariant pins the batched hand-off's determinism knob:
// BatchSize shapes only how much speculation each board publish
// announces, never the trajectory, so results are bit-identical
// across batch sizes — on the serial engine (where the knob is inert)
// and on the concurrent engine alike.
func TestBatchSizeInvariant(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var want uint64
		for i, batch := range []int{0, 1, 4, 64} {
			res := New(expr.New(), Config{Seed: 42, MaxExecs: 3000, Workers: workers, BatchSize: batch}).Run()
			if i == 0 {
				want = res.Fingerprint()
				continue
			}
			if got := res.Fingerprint(); got != want {
				t.Errorf("workers=%d batch=%d fingerprint %#x, want %#x", workers, batch, got, want)
			}
		}
	}
}

// TestParallelRetireMilestonesDeterministic pins the adaptive cache
// retirement under concurrency: hit/miss counters — and therefore the
// CacheAuto milestones and the retire decision — are trajectory state,
// computed in trajectory order no matter how many workers speculate,
// so they must be equal across worker counts at every budget. expr's
// hit rate sits under the retire threshold (BENCH_pr5: 13%), so the
// budget below crosses the first milestone and actually retires.
func TestParallelRetireMilestonesDeterministic(t *testing.T) {
	run := func(w int) *Result {
		return New(expr.New(), Config{Seed: 9, MaxExecs: 12000, Workers: w, Cache: CacheAuto}).Run()
	}
	serial := run(1)
	if !serial.CacheRetired {
		t.Fatalf("serial campaign did not retire the cache (hit rate %.2f); the test needs a retiring workload",
			serial.CacheHitRate())
	}
	for _, w := range []int{2, 4} {
		par := run(w)
		if par.CacheRetired != serial.CacheRetired ||
			par.CacheHits != serial.CacheHits || par.CacheMisses != serial.CacheMisses {
			t.Errorf("workers=%d: retired=%v hits=%d misses=%d, serial retired=%v hits=%d misses=%d",
				w, par.CacheRetired, par.CacheHits, par.CacheMisses,
				serial.CacheRetired, serial.CacheHits, serial.CacheMisses)
		}
		if par.Fingerprint() != serial.Fingerprint() {
			t.Errorf("workers=%d fingerprint diverged across the retire milestone", w)
		}
	}
}

// TestSpecDiagnostics sanity-checks the speculation counters: a
// Workers>1 campaign on a subject with a consumable pipeline should
// both run and consume speculative executions, and consumed entries
// can never exceed run ones.
func TestSpecDiagnostics(t *testing.T) {
	res := New(expr.New(), Config{Seed: 42, MaxExecs: 3000, Workers: 2}).Run()
	if res.SpecExecs == 0 {
		t.Error("Workers=2 campaign ran no speculative executions")
	}
	if res.SpecHits > res.SpecExecs {
		t.Errorf("SpecHits %d exceeds SpecExecs %d", res.SpecHits, res.SpecExecs)
	}
	serial := New(expr.New(), Config{Seed: 42, MaxExecs: 3000, Workers: 1}).Run()
	if serial.SpecExecs != 0 || serial.SpecHits != 0 {
		t.Errorf("serial campaign reports speculation (%d execs, %d hits)", serial.SpecExecs, serial.SpecHits)
	}
}
