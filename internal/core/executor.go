package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pfuzzer/internal/pcache"
	"pfuzzer/internal/subject"
	"pfuzzer/internal/trace"
)

// This file is the execution side of the concurrent engine: a pool of
// *speculative* workers that run subject executions the scheduler
// goroutine (the serial trajectory in serial.go) is about to need, and
// the consume-once memo the trajectory collects them from.
//
// The design inverts the usual scheduler/executor split. Instead of
// handing authoritative work to executors — which makes the campaign's
// result depend on completion order — the trajectory goroutine runs
// the exact serial algorithm, RNG stream and all, and the workers only
// *prefetch*: they execute inputs the trajectory has announced on its
// speculation board (the pending random extension, plus the top
// candidates of the queue) and publish the distilled facts into the
// memo. When the trajectory reaches one of those inputs it consumes
// the memo entry instead of running the subject; when speculation
// guessed wrong, the entry is swept and the trajectory executes
// inline, exactly as the serial engine would. Either way the campaign
// state transitions are the serial ones, in the serial order — which
// is what makes Workers > 1 bit-identical to Workers = 1 (see
// DESIGN.md §11) — and only wall-clock changes.
//
// Workers never touch campaign state: their whole interface is the
// board (read), the shared prefix-decided cache (read-only probes, to
// skip speculation the cache already answers), and the memo (write).
// All cache *inserts* happen on the trajectory, in trajectory order,
// so the cache's content — and the adaptive-retire milestones computed
// from its hit counters — stay deterministic too.

// specEntry is one speculative execution result. The claim/fill
// protocol: the worker inserts the entry under its stripe lock
// (claiming the input so no other worker repeats the run), executes,
// then publishes the payload fields with the done flag's release
// store. A consumer that took the entry before the fill spins on done;
// claims are always filled — workers only observe stop between tasks —
// so the wait is bounded by one subject execution.
type specEntry struct {
	done   atomic.Bool // payload below is published (release on Store)
	rf     *runFacts   // full distillation, factsOf(rec, true)
	d      int         // rec.DecidedPrefix(), uncapped
	dec    bool
	execNS int64  // wall time of the subject execution
	gen    uint64 // board generation at claim time (memo sweeps)
}

// The memo is striped like the execution cache: stripeOf routes each
// input to one of specStripes independently locked maps, so workers
// claiming and the trajectory consuming rarely contend. specMemoCap
// bounds the whole memo — entries nobody consumed (mispredictions)
// are swept by generation age, and between sweeps a full stripe just
// declines new claims.
const (
	specStripes  = 16
	specMemoCap  = 1 << 14
	specSweepGen = 64 // sweep cadence, in board generations
)

type specStripe struct {
	mu sync.Mutex
	m  map[string]*specEntry
	_  [104]byte // pad to a 128-byte stride: no false sharing between stripe locks
}

func stripeOf(input []byte) int {
	h := uint64(14695981039346656037)
	for _, b := range input {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return int(h % specStripes)
}

// specBoard is one batch of announced inputs. Workers claim tasks by
// atomic cursor — one publish covers BatchSize+1 hand-offs, which is
// the batched hand-off that replaced per-candidate channel sends — and
// park on more until the trajectory swaps in the next board.
type specBoard struct {
	tasks [][]byte
	next  atomic.Int64
	more  chan struct{} // closed when a newer board replaces this one
}

// specPool is the speculation side of the concurrent engine: the
// worker goroutines, the current board, and the memo.
type specPool struct {
	prog    subject.Program
	cache   *pcache.Cache[cachedFacts] // campaign-shared; nil = cache off
	board   atomic.Pointer[specBoard]
	stripes [specStripes]specStripe
	gen     atomic.Uint64 // boards published so far
	stop    chan struct{}
	wg      sync.WaitGroup
	nw      int // worker goroutine count (Workers - 1)

	specExecs atomic.Int64 // speculative subject executions run
	specHits  atomic.Int64 // memo entries the trajectory consumed
}

func newSpecPool(prog subject.Program, cache *pcache.Cache[cachedFacts], workers int) *specPool {
	p := &specPool{prog: prog, cache: cache, stop: make(chan struct{}), nw: workers}
	for i := range p.stripes {
		p.stripes[i].m = make(map[string]*specEntry)
	}
	p.board.Store(&specBoard{more: make(chan struct{})})
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// close stops the workers and waits them out. Entries claimed before
// the stop are filled before the worker exits, so no consumer can be
// left spinning on an abandoned claim.
func (p *specPool) close() {
	close(p.stop)
	p.wg.Wait()
}

// publish swaps in the next board and wakes parked workers. Tasks from
// the old board that were never claimed are simply dropped — the new
// board re-announces whatever is still relevant.
func (p *specPool) publish(tasks [][]byte) {
	nb := &specBoard{tasks: tasks, more: make(chan struct{})}
	old := p.board.Swap(nb)
	close(old.more)
	if gen := p.gen.Add(1); gen%specSweepGen == 0 {
		p.sweep(gen)
	}
}

// sweep drops filled memo entries no consumer came for within two
// generations of their claim — mispredicted speculation, which would
// otherwise accumulate. Unfilled claims are left alone; their worker
// still holds the entry pointer mid-fill.
func (p *specPool) sweep(gen uint64) {
	for i := range p.stripes {
		st := &p.stripes[i]
		st.mu.Lock()
		//pdlint:ordered -- unordered delete filter; entries are judged independently, so visit order cannot leak
		for k, e := range st.m {
			if e.done.Load() && gen-e.gen >= 2 {
				delete(st.m, k)
			}
		}
		st.mu.Unlock()
	}
}

// take consumes the memo entry for input: it removes the entry so the
// result is observed exactly once, then waits out a claim still being
// filled. A nil return means nobody speculated this input and the
// caller must execute it inline.
func (p *specPool) take(input []byte) *specEntry {
	st := &p.stripes[stripeOf(input)]
	st.mu.Lock()
	e := st.m[string(input)]
	if e == nil {
		st.mu.Unlock()
		return nil
	}
	delete(st.m, string(input))
	st.mu.Unlock()
	for !e.done.Load() {
		runtime.Gosched()
	}
	p.specHits.Add(1)
	return e
}

// worker is one speculative executor: claim a board task, run it,
// publish the facts, repeat; park when the board is exhausted.
func (p *specPool) worker() {
	defer p.wg.Done()
	var sink trace.Sink
	for {
		b := p.board.Load()
		i := b.next.Add(1) - 1
		if int(i) >= len(b.tasks) {
			select {
			case <-p.stop:
				return
			case <-b.more:
				continue
			}
		}
		p.speculate(b.tasks[i], &sink)
	}
}

// speculate executes one announced input into the memo, unless the
// execution cache already answers it (the trajectory will hit the
// cache without our help), another worker already claimed it (boards
// re-announce queue tops that survive several iterations), or the
// memo stripe is at capacity.
func (p *specPool) speculate(input []byte, sink *trace.Sink) {
	if p.cache != nil {
		if _, _, ok := p.cache.Get(input); ok {
			return
		}
	}
	st := &p.stripes[stripeOf(input)]
	e := &specEntry{gen: p.gen.Load()}
	st.mu.Lock()
	if _, claimed := st.m[string(input)]; claimed || len(st.m) >= specMemoCap/specStripes {
		st.mu.Unlock()
		return
	}
	st.m[string(input)] = e
	st.mu.Unlock()

	t0 := time.Now()
	rec := subject.ExecuteInto(p.prog, input, traceOpts(), sink)
	e.execNS = time.Since(t0).Nanoseconds()
	e.rf = factsOf(rec, true)
	e.d, e.dec = rec.DecidedPrefix()
	e.done.Store(true)
	p.specExecs.Add(1)
}

// pfor is the pool's parallel-for for queue re-scoring
// (pqueue.ReorderWith): the score pass partitions across the engine's
// total concurrency in transient goroutines — the workers themselves
// stay on speculation — and returns only when every partition is done.
// Scores are pure per element (the memo fields candidates share are
// atomics whose racing writers carry identical values), so the result
// is bit-identical to a sequential pass regardless of chunking. Below
// specPforMin elements the spawn overhead outweighs the win and the
// pass runs inline.
const specPforMin = 2048

func (p *specPool) pfor(n int, each func(lo, hi int)) {
	chunks := p.nw + 1
	if n < specPforMin || chunks < 2 {
		each(0, n)
		return
	}
	size := (n + chunks - 1) / chunks
	var wg sync.WaitGroup
	for lo := size; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			each(lo, hi)
		}(lo, hi)
	}
	each(0, size)
	wg.Wait()
}
