package core

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"pfuzzer/internal/pcache"
	"pfuzzer/internal/pqueue"
	"pfuzzer/internal/subject"
	"pfuzzer/internal/trace"
)

// executorSeedStride separates the per-worker RNG streams from the
// scheduler's (which uses Config.Seed itself) and from each other.
const executorSeedStride = 2654435761

// outcome is what one executed job sends back to the scheduler: the
// candidate it came from (nil for queue-empty restarts) and the
// distilled facts of the run(s). All campaign state mutation happens
// on the scheduler side; an outcome is immutable once sent.
type outcome struct {
	cand    *candidate // popped candidate, nil for a restart input
	depth   int        // substitution depth of the executed input
	primary *runFacts  // the input itself
	ext     *runFacts  // input + random char; nil if not run
	execs   int        // executions consumed (1 or 2)
	hits    int        // executions served from the prefix-decided cache
	misses  int        // executions that ran the subject (cache enabled)
	execNS  int64      // wall time spent in the execution layer
}

// executor is one worker of the concurrent campaign engine. Each
// executor owns a private RNG (for random extensions and restarts)
// and a private trace sink, so the hot execute-and-distill path runs
// with zero shared mutable state; the only cross-goroutine touches
// are the sharded queue pop and the outcome channel send.
type executor struct {
	id    int
	prog  subject.Program
	cfg   *Config
	rng   *rand.Rand
	sink  trace.Sink
	cache *pcache.Cache[cachedFacts] // campaign-shared; pcache synchronizes internally
}

func newExecutor(id int, prog subject.Program, cfg *Config, cache *pcache.Cache[cachedFacts]) *executor {
	return &executor{
		id:    id,
		prog:  prog,
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed + int64(id+1)*executorSeedStride)),
		cache: cache,
	}
}

func (e *executor) randChar() byte {
	return e.cfg.Charset[e.rng.Intn(len(e.cfg.Charset))]
}

// exec runs input once — or replays its memoised outcome from the
// campaign-shared prefix-decided cache — reusing the executor's sink,
// and copies the facts out before the sink can be reused; deriving
// marks runs whose comparisons will seed children. The hit/miss tally
// goes into o, whose counts the scheduler folds into the result.
func (e *executor) exec(input []byte, deriving bool, o *outcome) *runFacts {
	t0 := time.Now()
	rf, hit := cachedExec(e.cache, e.prog, input, deriving, &e.sink)
	o.execNS += time.Since(t0).Nanoseconds()
	if e.cache != nil {
		if hit {
			o.hits++
		} else {
			o.misses++
		}
	}
	return rf
}

// loop pops candidates from the home shard (stealing when it runs
// dry), executes them plus a randomly extended variant, and streams
// outcomes to the scheduler until the stop signal fires or the shared
// execution budget runs out. When even stealing finds no work it
// synthesizes a fresh single-character restart input, the parallel
// analogue of the serial engine's queue-exhausted restart. home is
// the worker's shard affinity, passed separately from id because a
// hybrid campaign rebuilds its executors every phase with fresh
// (phase-folded) ids but the same shard layout.
//
// The extension always runs (budget permitting), even when the input
// was accepted: the executor cannot see the coverage set, so it
// cannot tell an accepted input with new coverage (where the serial
// engine skips the extension) from an accepted-but-stale one (where
// the serial engine runs it and derives children from its trace).
// Running it unconditionally keeps the stale case — the common one,
// since emitted inputs are deduplicated — on the serial engine's
// productive path, at the cost of one rarely wasted execution when
// the input turns out to carry new coverage.
func (e *executor) loop(q *pqueue.Sharded[*candidate], results chan<- outcome, budget *atomic.Int64, stop <-chan struct{}, wg *sync.WaitGroup, home int) {
	defer wg.Done()
	for {
		select {
		case <-stop:
			return
		default:
		}
		if budget.Add(-1) < 0 {
			return
		}
		cand, _, ok := q.PopOwn(home)
		var input []byte
		depth := 0
		if ok {
			input, depth = cand.input, cand.parents
		} else {
			cand = nil
			input = []byte{e.randChar()}
		}
		o := outcome{cand: cand, depth: depth, execs: 1}
		o.primary = e.exec(input, false, &o)
		if budget.Add(-1) >= 0 {
			eInp := append(append(make([]byte, 0, len(input)+1), input...), e.randChar())
			o.ext = e.exec(eInp, true, &o)
			o.execs = 2
		}
		select {
		case results <- o:
		case <-stop:
			return
		}
	}
}
