package core

import (
	"pfuzzer/internal/subject"
	"time"
)

// runSerial executes the campaign on a single goroutine, popping one
// candidate at a time and re-scoring the queue after every valid
// input, exactly as the paper's Algorithm 1 does. Its behaviour under
// a fixed Seed is bit-for-bit deterministic (golden_test.go pins the
// emitted sequence), which keeps the paper-reproduction benchmarks
// valid; the concurrent engine in scheduler.go trades that strict
// ordering for throughput.
func (f *Fuzzer) runSerial() *Result {
	f.start = time.Now()
	f.res.Coverage = make(map[uint32]bool)

	// The paper starts from the empty string, whose rejection via an
	// EOF access at index 0 teaches the fuzzer to append (Figure 1).
	input := []byte{}
	eInp := []byte{f.randChar()}

	var cur *candidate
	for !f.done() {
		if _, ok := f.checkRun(input, false); !ok {
			if rfE, okE := f.checkRun(eInp, true); !okE {
				f.addChildrenSerial(rfE)
			}
			// Re-enqueue the processed input with a retry decay: the
			// random extension is drawn fresh on every pop, so a
			// prefix whose extension led nowhere (for example a
			// keyword destroyed by appending a letter) gets another
			// chance later. The paper's queue admits duplicate
			// inputs and retries the same way.
			if cur != nil {
				cur.retries++
				f.queue.Push(cur, f.score(cur))
			}
		}
		next, score, found := f.queue.PopRescored(f.score)
		if !found {
			// Queue exhausted: restart from a fresh random character.
			input = []byte{f.randChar()}
			f.curParents = 0
			cur = nil
		} else {
			input = next.input
			f.curParents = next.parents
			cur = next
			if f.cfg.DebugPop != nil {
				f.cfg.DebugPop(input, score, f.res.Execs, f.queue.Len())
			}
		}
		eInp = append(append([]byte{}, input...), f.randChar())
	}

	f.res.Elapsed = time.Since(f.start)
	return &f.res
}

// execFacts runs input once against the subject, reusing the serial
// engine's trace sink, and distills the record into run facts;
// deriving marks runs whose comparisons will seed children.
func (f *Fuzzer) execFacts(input []byte, deriving bool) *runFacts {
	f.res.Execs++
	rec := subject.ExecuteInto(f.prog, input, traceOpts(), &f.sink)
	f.pathSeen[rec.PathHash]++
	return factsOf(rec, deriving)
}

// checkRun executes input and, if it is valid and covers new code,
// processes it as a new valid input (Algorithm 1, runCheck/validInp).
// It returns the run facts and whether the input was treated as valid.
func (f *Fuzzer) checkRun(input []byte, deriving bool) (*runFacts, bool) {
	rf := f.execFacts(input, deriving)
	if rf.accepted && f.hasNewIDs(rf.blocks) {
		f.emitValid(rf)
		// Re-score the queue against the grown vBr: "all remaining
		// inputs in the queue have to be re-evaluated in terms of
		// coverage" (§3.2).
		f.queue.Reorder(f.score)
		f.addChildrenSerial(rf)
		return rf, true
	}
	return rf, false
}

// addChildrenSerial enqueues rf's successor inputs at the current
// substitution depth and keeps the queue within its bound.
func (f *Fuzzer) addChildrenSerial(rf *runFacts) {
	f.addChildren(rf, f.curParents+1, func(cd *candidate) {
		f.queue.Push(cd, f.score(cd))
	})
	f.pruneIfOvergrown(&f.queue)
}
