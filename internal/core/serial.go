package core

import "time"

// runSerial executes the campaign's trajectory on this goroutine,
// popping one candidate at a time and re-scoring the queue after
// every valid input, exactly as the paper's Algorithm 1 does. Its
// behaviour under a fixed Seed is bit-for-bit deterministic
// (golden_test.go pins the emitted sequence), which keeps the
// paper-reproduction benchmarks valid.
//
// This same loop is the concurrent engine: with Workers > 1
// (scheduler.go) the loop body additionally announces upcoming
// executions on the speculation board (publishSpec, a no-op here
// otherwise) and execFacts consumes speculative results through the
// memo — both of which change where executions physically run, never
// what the trajectory computes, so the two engines share one code
// path and one behaviour.
//
// The loop cursor (sInput, sExt, sCur) lives on the Fuzzer so the
// engine is resumable: the hybrid phase driver (hybrid.go) runs it in
// bursts bounded by execCap, and a later burst continues exactly
// where — and with exactly the RNG stream position — the previous one
// stopped. Single-phase campaigns enter once and run out the budget,
// which is bit-identical to the pre-refactor loop.
func (f *Fuzzer) runSerial() {
	f.begin()
	if !f.sStarted {
		f.sStarted = true
		// The paper starts from the empty string, whose rejection via
		// an EOF access at index 0 teaches the fuzzer to append
		// (Figure 1).
		f.sInput = []byte{}
		f.sExt = []byte{f.randChar()}
	}

	for !f.done() {
		f.publishSpec()
		if _, ok := f.checkRun(f.sInput, false); !ok {
			if rfE, okE := f.checkRun(f.sExt, true); !okE {
				f.addChildrenSerial(rfE)
			}
			// Re-enqueue the processed input with a retry decay: the
			// random extension is drawn fresh on every pop, so a
			// prefix whose extension led nowhere (for example a
			// keyword destroyed by appending a letter) gets another
			// chance later. The paper's queue admits duplicate
			// inputs and retries the same way.
			if f.sCur != nil {
				f.sCur.retries++
				f.queue.Push(f.sCur, f.score(f.sCur))
			}
		}
		next, score, found := f.queue.PopRescored(f.score)
		if !found {
			// Queue exhausted: restart from a fresh random character.
			f.sInput = []byte{f.randChar()}
			f.curParents = 0
			f.curMineGen = 0
			f.sCur = nil
		} else {
			f.sInput = next.input
			f.curParents = next.parents
			f.curMineGen = next.mineGen
			f.sCur = next
			f.sCurScore = score
			if f.cfg.Events != nil {
				f.emit(Event{Kind: EventPop, Input: f.sInput, Score: score,
					Execs: f.res.Execs, QueueLen: f.queue.Len()})
			}
		}
		// Exact-size allocation (the double-append idiom allocated twice
		// via growth). The buffer must be fresh, not reused: with the
		// speculation pool live, workers still hold the previous board's
		// task bytes.
		ext := make([]byte, len(f.sInput)+1)
		copy(ext, f.sInput)
		ext[len(f.sInput)] = f.randChar()
		f.sExt = ext
	}
}

// execFacts runs input once against the subject — or replays its
// memoised outcome when the prefix-decided cache already holds it —
// reusing the serial engine's trace sink, and distills the record into
// run facts; deriving marks runs whose comparisons will seed children.
func (f *Fuzzer) execFacts(input []byte, deriving bool) *runFacts {
	f.res.Execs++
	t0 := time.Now()
	rf, hit, specNS := cachedExec(f.cache, f.prog, input, deriving, &f.sink, f.spec, &f.hint, &f.rfScratch)
	el := time.Since(t0)
	// A speculatively executed input charges the worker's wall time,
	// so ExecElapsed keeps meaning "time spent executing subjects"
	// (summed across goroutines) rather than collapsing to the memo
	// probe. The latency EWMA feeding the BatchSize auto-tune tracks
	// real executions only — cache hits would drag it toward zero.
	f.res.ExecElapsed += el + time.Duration(specNS)
	if !hit {
		ns := float64(el.Nanoseconds())
		if specNS > 0 {
			ns = float64(specNS)
		}
		if f.execEWMA == 0 {
			f.execEWMA = ns
		} else {
			f.execEWMA += (ns - f.execEWMA) / 8
		}
	}
	if f.cache != nil {
		if hit {
			f.res.CacheHits++
		} else {
			f.res.CacheMisses++
		}
		f.maybeRetireCache()
	}
	f.bumpPath(rf.pathHash)
	return rf
}

// checkRun executes input and, if it is valid and covers new code,
// processes it as a new valid input (Algorithm 1, runCheck/validInp).
// It returns the run facts and whether the input was treated as
// valid. Accepted mined-lineage runs that merely set a length record
// are emitted into the result (recordLength) but stay on the ordinary
// search path — extension and retry — as if nothing happened.
func (f *Fuzzer) checkRun(input []byte, deriving bool) (*runFacts, bool) {
	rf := f.execFacts(input, deriving)
	if rf.accepted && f.hasNewIDs(rf.blocks) {
		f.emitValid(rf)
		// Re-score the queue against the grown vBr: "all remaining
		// inputs in the queue have to be re-evaluated in terms of
		// coverage" (§3.2).
		f.reorderQueue()
		f.addChildrenSerial(rf)
		return rf, true
	}
	f.recordLength(rf, f.curMineGen)
	return rf, false
}

// addChildrenSerial enqueues rf's successor inputs at the current
// substitution depth and mined lineage, and keeps the queue within
// its bound.
func (f *Fuzzer) addChildrenSerial(rf *runFacts) {
	f.addChildren(rf, f.curParents+1, f.curMineGen, func(cd *candidate) {
		f.queue.Push(cd, f.score(cd))
	})
	f.pruneIfOvergrown(&f.queue)
}
