package core

import (
	"testing"

	"pfuzzer/internal/core/coretest"
	"pfuzzer/internal/subjects/cjson"
	"pfuzzer/internal/subjects/expr"
)

// TestParallelFindsValidInputs runs the concurrent engine and checks
// the same contract as the serial engine: every emitted input is
// accepted by the parser, the execution budget is respected, and the
// search makes progress. The budget bound allows the serial engine's
// one-execution overshoot — an iteration that starts under the cap
// runs the input and its extension — because the concurrent engine
// executes the identical trajectory.
func TestParallelFindsValidInputs(t *testing.T) {
	for _, workers := range []int{2, 4} {
		res := New(expr.New(), Config{Seed: 1, MaxExecs: 6000, Workers: workers}).Run()
		if res.Execs > 6000+1 {
			t.Errorf("workers=%d: %d execs exceed the budget of 6000(+1)", workers, res.Execs)
		}
		if len(res.Valids) == 0 {
			t.Fatalf("workers=%d: no valid inputs after %d execs", workers, res.Execs)
		}
		for _, v := range res.Valids {
			rec := coretest.ExecFull(expr.New(), v.Input)
			if !rec.Accepted() {
				t.Errorf("workers=%d: emitted input %q is not accepted", workers, v.Input)
			}
		}
	}
}

// TestParallelEmitsUniqueValids verifies the scheduler-side dedup.
func TestParallelEmitsUniqueValids(t *testing.T) {
	res := New(cjson.New(), Config{Seed: 5, MaxExecs: 8000, Workers: 4}).Run()
	seen := map[string]bool{}
	for _, v := range res.Valids {
		if seen[string(v.Input)] {
			t.Errorf("duplicate valid input %q", v.Input)
		}
		seen[string(v.Input)] = true
	}
}

// TestParallelCoverageIsUnionOfValids mirrors the serial invariant:
// the result coverage is exactly the union of the valids' block sets.
func TestParallelCoverageIsUnionOfValids(t *testing.T) {
	res := New(expr.New(), Config{Seed: 3, MaxExecs: 6000, Workers: 3}).Run()
	union := map[uint32]bool{}
	for _, v := range res.Valids {
		rec := coretest.ExecFull(expr.New(), v.Input)
		for id := range rec.BlockFirst {
			union[id] = true
		}
	}
	if len(union) != len(res.Coverage) {
		t.Fatalf("coverage = %d blocks, union of valids = %d", len(res.Coverage), len(union))
	}
}

// TestParallelMaxValids checks the early-stop knob under concurrency.
// In-flight outcomes may push the count slightly past the limit (the
// serial engine can overshoot within one iteration the same way), but
// the campaign must stop near it rather than running out the budget.
func TestParallelMaxValids(t *testing.T) {
	res := New(cjson.New(), Config{Seed: 2, MaxExecs: 50000, Workers: 4, MaxValids: 3}).Run()
	if len(res.Valids) < 3 {
		t.Fatalf("stopped with %d valids, want >= 3", len(res.Valids))
	}
	if res.Execs == 50000 {
		t.Errorf("campaign ran out the full budget despite MaxValids=3")
	}
}

// TestParallelEventsFire checks the typed event stream is delivered
// from the scheduler goroutine for every emission. The sink is
// intentionally unsynchronized: with Workers > 1 all events come from
// the single scheduler goroutine, so under -race this doubles as the
// delivery-thread proof.
func TestParallelEventsFire(t *testing.T) {
	var calls int
	cfg := Config{Seed: 1, MaxExecs: 6000, Workers: 4,
		Events: func(ev Event) {
			if ev.Kind == EventValid {
				calls++
			}
		}}
	res := New(expr.New(), cfg).Run()
	if calls != len(res.Valids) {
		t.Errorf("EventValid fired %d times for %d valids", calls, len(res.Valids))
	}
}
