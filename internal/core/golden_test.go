package core

import (
	"hash/fnv"
	"testing"

	"pfuzzer/internal/subject"
	"pfuzzer/internal/subjects/cjson"
	"pfuzzer/internal/subjects/expr"
	"pfuzzer/internal/subjects/paren"
)

// goldenCampaigns pins the serial engine's exact output: the values
// were captured from the pre-refactor monolithic Fuzzer.Run at commit
// fbdac0b with Seed=42, MaxExecs=3000. The scheduler/executor split
// must keep Workers<=1 bit-for-bit identical to that engine so the
// paper-reproduction benchmarks stay valid; if a deliberate algorithm
// change breaks these values, re-capture them and say so in the
// commit message.
var goldenCampaigns = []struct {
	name   string
	prog   func() subject.Program
	valids int
	execs  int
	hash   uint64
	first  []string
}{
	{"expr", func() subject.Program { return expr.New() },
		7, 3001, 0x2c5263a453a1f172, []string{"7", "+0", "-5", "67", "(3)"}},
	{"cjson", func() subject.Program { return cjson.New() },
		25, 3000, 0xad58a4d7bb389c64, []string{"false", "null", "true", "{}", `""`}},
	{"paren", func() subject.Program { return paren.New() },
		6, 3000, 0xbfacd40b64c6a6a5, []string{"()", "[]", "{}", "<>", "[()]"}},
}

// goldenRun executes one pinned campaign and returns the emitted
// inputs plus the FNV-1a hash of the full NUL-joined sequence.
func goldenRun(t *testing.T, prog subject.Program, workers int) (*Result, uint64) {
	t.Helper()
	res := New(prog, Config{Seed: 42, MaxExecs: 3000, Workers: workers}).Run()
	h := fnv.New64a()
	for _, v := range res.Valids {
		h.Write(v.Input)
		h.Write([]byte{0})
	}
	return res, h.Sum64()
}

// TestGoldenSerialSequence asserts that the default (Workers=0) engine
// reproduces the pre-refactor golden sequences exactly.
func TestGoldenSerialSequence(t *testing.T) {
	for _, g := range goldenCampaigns {
		t.Run(g.name, func(t *testing.T) {
			res, hash := goldenRun(t, g.prog(), 0)
			if len(res.Valids) != g.valids || res.Execs != g.execs {
				t.Errorf("valids=%d execs=%d, golden valids=%d execs=%d",
					len(res.Valids), res.Execs, g.valids, g.execs)
			}
			for i, want := range g.first {
				if i >= len(res.Valids) {
					break
				}
				if got := string(res.Valids[i].Input); got != want {
					t.Errorf("valid[%d] = %q, golden %q", i, got, want)
				}
			}
			if hash != g.hash {
				t.Errorf("sequence hash = %#x, golden %#x", hash, g.hash)
			}
		})
	}
}

// TestGoldenWorkersOne asserts Workers=1 selects the same serial
// engine: its output must be bit-identical to Workers=0.
func TestGoldenWorkersOne(t *testing.T) {
	for _, g := range goldenCampaigns {
		t.Run(g.name, func(t *testing.T) {
			_, hash := goldenRun(t, g.prog(), 1)
			if hash != g.hash {
				t.Errorf("Workers=1 sequence hash = %#x, golden %#x", hash, g.hash)
			}
		})
	}
}
