package core

import (
	"pfuzzer/internal/pcache"
	"pfuzzer/internal/subject"
	"pfuzzer/internal/trace"
)

// CacheMode selects the prefix-decided execution cache behaviour
// (Config.Cache).
type CacheMode int

const (
	// CacheAuto — the zero value — enables the cache on every engine.
	CacheAuto CacheMode = iota
	// CacheOn enables the cache explicitly (it only differs from
	// CacheAuto as a Restore override, where CacheAuto means "keep
	// what the snapshot says").
	CacheOn
	// CacheOff disables the cache.
	CacheOff
)

// cacheEnabled reports whether the campaign should memoise executions.
func (c *Config) cacheEnabled() bool { return c.Cache != CacheOff }

// Adaptive retirement (CacheAuto): the cache's benefit depends on how
// often the search re-executes decided inputs, which varies by subject
// — flat, early-saturating grammars reach near-total hit rates while
// wide open grammars execute mostly fresh inputs, where lookups and
// inserts are pure overhead. Because the cache is semantically
// transparent, the engine is free to drop it mid-campaign: starting at
// cacheProbation executions (and re-checking a factor of 4 later each
// time, so a late-blooming campaign still gets re-judged), a hit rate
// below cacheMinHitPct retires the cache. On the serial engine the
// decision is a deterministic function of the campaign, and either way
// the emitted corpus is unchanged; executions after retirement count
// as misses (they run the subject for real).
const (
	cacheProbation  = 8192
	cacheMinHitPct  = 25
	cacheCheckScale = 4
)

// maybeRetireCache applies the adaptive rule at the configured
// execution milestones. Called from the single goroutine that owns
// campaign state; executors observe retirement through the cache's own
// atomic flag.
func (f *Fuzzer) maybeRetireCache() {
	if f.cache == nil || f.cfg.Cache == CacheOn || f.cache.Retired() {
		return
	}
	if f.cacheCheckAt == 0 {
		f.cacheCheckAt = cacheProbation
	}
	if f.res.Execs < f.cacheCheckAt {
		return
	}
	f.cacheCheckAt *= cacheCheckScale
	if f.res.CacheHits*100 < f.res.Execs*cacheMinHitPct {
		f.cache.Retire()
		f.res.CacheRetired = true
	}
}

// cachedFacts is the memoised outcome of one subject execution,
// stored by value inside the cache table. Only the scalar verdict is
// stored eagerly; the derived facts children are built from (trimmed
// blocks, final-index comparisons, stack average) are materialized
// lazily, because the most common execution by far — a rejected run —
// is mostly never derived from, and eagerly retaining comparison
// slices for every executed input is pure GC ballast. A rejected
// entry starts slim (derived == nil); the first lookup that needs the
// derived half re-executes the input once and upgrades the entry in
// place, so the expensive distillation is paid at most once per entry
// and only for entries the search actually revisits. Accepted entries
// are always stored full: every accepted hit needs the block set.
type cachedFacts struct {
	accepted bool
	pathHash uint64
	derived  *derivedFacts
}

// derivedFacts is the deriving-run half of the memo: what addChildren
// and emitValid consume. All slices are owned by the entry (factsOf
// copies them out of the sink-backed record), so concurrent readers
// may alias them freely.
type derivedFacts struct {
	stack     float64
	blocks    []uint32
	trimmed   []uint32
	lastComps []trace.Comparison
}

// runFactsInto materializes the memoised outcome for input into rf,
// reproducing exactly what a real execution of input would have
// distilled. rf is the trajectory's reusable scratch: the engine never
// retains a *runFacts past the loop iteration that produced it (the
// slices a candidate or cache entry keeps are owned by the entry, not
// the struct), so one scratch per Fuzzer replaces a per-hit
// allocation.
func (df cachedFacts) runFactsInto(rf *runFacts, input []byte) *runFacts {
	*rf = runFacts{input: input, accepted: df.accepted, pathHash: df.pathHash}
	if d := df.derived; d != nil {
		rf.stack = d.stack
		rf.blocks = d.blocks
		rf.trimmed = d.trimmed
		rf.lastComps = d.lastComps
	}
	return rf
}

// derivedOf captures rf's deriving-run half for memoisation.
func derivedOf(rf *runFacts) *derivedFacts {
	return &derivedFacts{stack: rf.stack, blocks: rf.blocks, trimmed: rf.trimmed, lastComps: rf.lastComps}
}

// newCache builds a campaign's execution cache (nil when disabled).
func newCache(cfg *Config) *pcache.Cache[cachedFacts] {
	if !cfg.cacheEnabled() {
		return nil
	}
	return pcache.New[cachedFacts](0)
}

// cachedExec is the one execute-with-memoisation path both engines
// run: consult the cache, and on a miss execute input through sink and
// memoise the distilled facts. hit reports whether subject.ExecuteInto
// was skipped — the executions-per-second win the cache exists for.
//
// The cache is semantically transparent: a hit returns facts
// bit-identical to what the real run would have produced (the
// conformance kit's cache-transparency property pins this per
// subject), so campaigns with the cache on or off emit the same corpus
// at the same execution indices, only faster. A lookup that finds a
// slim entry when the caller needs derived facts counts as a miss:
// the input runs for real and the entry upgrades in place.
// maxDecidedPrefix bounds what the prefix tier admits: a deciding
// prefix longer than this is effectively input-specific — the odds of
// a future candidate sharing hundreds of leading bytes but having been
// generated independently are negligible — so such runs are admitted
// as exact entries instead, which serves the re-pop hits they do get
// without growing the per-lookup probe range.
const maxDecidedPrefix = 64

// On the concurrent engine the call additionally consults the
// speculation memo (spec != nil) on every path that would run the
// subject: a speculative worker may already have executed the input,
// in which case its distilled facts — and its DecidedPrefix verdict —
// stand in for the inline run. A memo-served execution still counts
// as a cache miss (the serial engine would have run the subject), and
// the cache inserts below use the same bytes, the same admission
// order and the same eagerness rule whether the facts came from the
// memo or an inline run, so the cache's content stays bit-identical
// to the serial engine's at every execution index. specNS reports the
// worker wall time a memo hit carried (0 otherwise), which the caller
// folds into Result.ExecElapsed.
//
// hint is the trajectory's extension-probe carry-over. The engine's
// loop always executes a candidate's random extension immediately
// after the candidate itself (deriving marks the extension call, and
// all executions — hence all cache admissions — happen on this one
// goroutine), which makes two shortcuts sound and bit-transparent:
//
//   - if the candidate's execution admitted the candidate's own
//     deciding prefix, the extension's Get is *guaranteed* to stop at
//     exactly that entry — no shorter prefix can exist (it would have
//     answered the candidate's lookup) and shortest-prefix-wins rules
//     out everything longer — so the lookup is answered without
//     hashing a byte;
//   - otherwise, every prefix probe up to the candidate's length
//     would repeat a probe the candidate's missed lookup already made
//     (the only admissions since were the candidate's own: an exact
//     entry in the tagged tier, or a prefix admission that took the
//     first shortcut), so pcache.GetExt resumes the rolling hash from
//     the candidate's miss Ref and hashes only the appended byte.
//
// Both return exactly what the full Get would have — same value, same
// hit/miss verdict, same counters — so fingerprints, corpora and
// retire milestones are unchanged; only the per-iteration hash work
// drops from two passes over the input to one.
func cachedExec(cache *pcache.Cache[cachedFacts], prog subject.Program,
	input []byte, deriving bool, sink *trace.Sink, spec *specPool,
	hint *extHint, scratch *runFacts) (rf *runFacts, hit bool, specNS int64) {
	var slot pcache.Ref
	upgrade := false
	if cache != nil {
		if deriving && hint.stored && len(input) > hint.prevLen && !cache.Retired() {
			e := hint.entry
			hint.clear()
			return e.runFactsInto(scratch, input), true, 0
		}
		var e cachedFacts
		var ref pcache.Ref
		var ok bool
		if deriving && hint.ref.Missed() && len(input) > hint.prevLen {
			e, ref, ok = cache.GetExt(hint.ref, input[hint.prevLen:])
		} else {
			e, ref, ok = cache.Get(input)
		}
		hint.clear()
		if ok {
			if e.derived != nil {
				return e.runFactsInto(scratch, input), true, 0
			}
			if !deriving {
				// Slim entries are always rejections, whose verdict and
				// path hash are all a non-deriving caller consumes.
				return e.runFactsInto(scratch, input), true, 0
			}
			upgrade = true
		}
		slot = ref
	}
	// The subject must run; consume a speculative run if one exists,
	// execute inline otherwise. The memo always carries the full
	// distillation, a superset of any caller's eagerness — the extra
	// fields on a slim-eligible rejection are simply never read.
	var rec *trace.Record
	var d int
	var decided bool
	if spec != nil {
		if se := spec.take(input); se != nil {
			rf, d, decided, specNS = se.rf, se.d, se.dec, se.execNS
		}
	}
	if rf == nil {
		rec = subject.ExecuteInto(prog, input, traceOpts(), sink)
		d, decided = rec.DecidedPrefix()
	}
	if cache == nil {
		if rf == nil {
			rf = factsOfInto(scratch, rec, deriving)
		}
		return rf, false, specNS
	}
	if upgrade {
		if rf == nil {
			rf = factsOfInto(scratch, rec, true)
		}
		cache.Set(slot, cachedFacts{accepted: rf.accepted, pathHash: rf.pathHash, derived: derivedOf(rf)})
		return rf, false, specNS
	}
	decided = decided && d <= maxDecidedPrefix
	// Distill the derived half eagerly when the caller needs it anyway
	// (deriving) or when the entry is a deciding prefix: the engine
	// runs every input's random extension right after the input
	// itself, so a decided rejection's prefix entry is looked up — by
	// that extension, with deriving set — within the next call, and
	// storing it slim would only buy an immediate upgrade
	// re-execution. Exact-tier rejections from non-deriving runs stay
	// slim (they serve re-pops, which are non-deriving too) and
	// upgrade in place on the rare deriving touch.
	if rf == nil {
		rf = factsOfInto(scratch, rec, deriving || decided)
	}
	e := cachedFacts{accepted: rf.accepted, pathHash: rf.pathHash}
	if deriving || decided || rf.accepted {
		e.derived = derivedOf(rf)
	}
	if decided {
		// Rejected on the prefix alone: every extension of these d
		// bytes replays this trace, so the entry matches whole families
		// of future candidates.
		if cache.PutPrefix(input[:d], e) {
			hint.stored = true
			hint.entry = e
		}
	} else {
		// Length-dependent outcome (acceptance or EOF rejection, or a
		// deciding prefix too long to be worth a probe slot): only a
		// re-execution of the identical input may reuse it. These
		// recur constantly — every re-pop of a candidate re-runs its
		// input, and extension runs re-draw earlier extensions — so
		// all of them are admitted up to the cache's entry bound,
		// reusing the missed lookup's hash.
		cache.PutExactAt(slot, e)
	}
	hint.ref = slot
	hint.prevLen = len(input)
	return rf, false, specNS
}

// extHint is the lookup state cachedExec carries from a candidate's
// execution to its extension's (see cachedExec). The zero value is
// inert; clear resets it to inert, which every consult does — a hint
// is good for exactly the next call.
type extHint struct {
	ref     pcache.Ref  // miss Ref of the previous input's lookup
	prevLen int         // length of the previous input
	entry   cachedFacts // prefix entry the previous execution admitted
	stored  bool        // entry was admitted as a deciding prefix
}

func (h *extHint) clear() { h.ref = pcache.Ref{}; h.stored = false }
