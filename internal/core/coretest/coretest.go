// Package coretest provides the execution helpers shared by the core
// engine's tests. Before it existed, every test that wanted to
// re-validate an emitted input against a fresh subject instance
// duplicated the trace-option plumbing (subject.Execute with
// trace.Full(), or an ad-hoc empty Options); funneling those call
// sites through one helper keeps the recording configuration a single
// decision and gives the tests one obvious place to extend when the
// trace surface grows.
package coretest

import (
	"pfuzzer/internal/subject"
	"pfuzzer/internal/trace"
)

// ExecFull runs p once on input under full trace recording and
// returns the sealed record — the standard way a test re-executes an
// emitted input to inspect its verdict or coverage.
func ExecFull(p subject.Program, input []byte) *trace.Record {
	return subject.Execute(p, input, trace.Full())
}

// Accepts reports whether p accepts input, the single-bit form of
// ExecFull for emission-soundness assertions.
func Accepts(p subject.Program, input []byte) bool {
	return ExecFull(p, input).Accepted()
}
