package core

import (
	"testing"

	"pfuzzer/internal/subjects/expr"
)

// TestFingerprintIdentity: equal campaigns hash equal, and the hash
// is sensitive to each component of the emission record.
func TestFingerprintIdentity(t *testing.T) {
	cfg := Config{Seed: 9, MaxExecs: 2000}
	a := New(expr.New(), cfg).Run()
	b := New(expr.New(), cfg).Run()
	if len(a.Valids) == 0 {
		t.Fatal("reference campaign emitted nothing")
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical campaigns produced different fingerprints")
	}

	base := a.Fingerprint()
	perturb := []struct {
		name string
		f    func(r Result) Result
	}{
		{"execs", func(r Result) Result { r.Execs++; return r }},
		{"valid input", func(r Result) Result {
			v := append([]Valid(nil), r.Valids...)
			v[0].Input = append([]byte("x"), v[0].Input...)
			r.Valids = v
			return r
		}},
		{"valid exec index", func(r Result) Result {
			v := append([]Valid(nil), r.Valids...)
			v[0].Exec++
			r.Valids = v
			return r
		}},
		{"dropped valid", func(r Result) Result { r.Valids = r.Valids[:len(r.Valids)-1]; return r }},
		{"coverage", func(r Result) Result {
			c := map[uint32]bool{1 << 30: true}
			for id := range r.Coverage {
				c[id] = true
			}
			r.Coverage = c
			return r
		}},
	}
	for _, p := range perturb {
		mod := p.f(*a)
		if mod.Fingerprint() == base {
			t.Errorf("fingerprint ignored a change to %s", p.name)
		}
	}
}

// TestCampaignFingerprintMatchesResult: the Campaign-level hook reads
// the same hash as its Result.
func TestCampaignFingerprintMatchesResult(t *testing.T) {
	c := NewCampaign(expr.New(), Config{Seed: 9, MaxExecs: 1500})
	for {
		if spent, more := c.Step(400); !more || spent == 0 {
			break
		}
	}
	if c.Fingerprint() != c.Result().Fingerprint() {
		t.Error("Campaign.Fingerprint disagrees with Result.Fingerprint")
	}
}
