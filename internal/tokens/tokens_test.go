package tokens

import "testing"

func inv() Inventory {
	return Inventory{
		Lit("{"), Lit("}"), Class("number", 1),
		Lit("if"), Class("string", 2),
		Lit("else"),
		Lit("while"),
	}
}

func TestCounts(t *testing.T) {
	i := inv()
	if got := i.Count(); got != 7 {
		t.Errorf("Count = %d, want 7", got)
	}
	if got := i.CountLen(1); got != 3 {
		t.Errorf("CountLen(1) = %d, want 3", got)
	}
	if got := i.CountLen(2); got != 2 {
		t.Errorf("CountLen(2) = %d, want 2", got)
	}
	lengths := i.Lengths()
	want := []int{1, 2, 4, 5}
	if len(lengths) != len(want) {
		t.Fatalf("Lengths = %v", lengths)
	}
	for j := range want {
		if lengths[j] != want[j] {
			t.Fatalf("Lengths = %v, want %v", lengths, want)
		}
	}
}

func TestCoverIgnoresUnknownNames(t *testing.T) {
	c := Cover(inv(), map[string]bool{"if": true, "bogus": true})
	if c.FoundCount() != 1 {
		t.Errorf("FoundCount = %d, want 1", c.FoundCount())
	}
}

func TestSplit(t *testing.T) {
	c := Cover(inv(), map[string]bool{"if": true, "while": true, "{": true})
	sf, st, lf, lt := c.Split(3)
	if sf != 2 || st != 5 {
		t.Errorf("short = %d/%d, want 2/5", sf, st)
	}
	if lf != 1 || lt != 2 {
		t.Errorf("long = %d/%d, want 1/2", lf, lt)
	}
}

func TestFoundLenAndMissing(t *testing.T) {
	c := Cover(inv(), map[string]bool{"else": true})
	if got := c.FoundLen(4); got != 1 {
		t.Errorf("FoundLen(4) = %d, want 1", got)
	}
	if got := c.FoundLen(1); got != 0 {
		t.Errorf("FoundLen(1) = %d, want 0", got)
	}
	missing := c.Missing()
	if len(missing) != 6 {
		t.Errorf("Missing = %v, want 6 entries", missing)
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(1, 4); got != 25 {
		t.Errorf("Percent(1,4) = %v", got)
	}
	if got := Percent(0, 0); got != 0 {
		t.Errorf("Percent(0,0) = %v, want 0", got)
	}
}
