// Package tokens models the input-coverage metric of the paper's
// evaluation (§5.3): each subject has an inventory of tokens, grouped
// by token length (Tables 2, 3, 4), and a tool's input coverage is the
// set of inventory tokens appearing in the valid inputs it generated
// (Figure 3). Strings, numbers and identifiers are classified as one
// token each, and non-token characters such as whitespace are ignored,
// following the paper.
package tokens

import "sort"

// Token is one entry in a subject's token inventory. Name is the
// canonical name used by the subject's tokenizer: the literal spelling
// for fixed tokens ("while", "{") or the class name for open classes
// ("number", "string", "identifier"). Len is the length the paper's
// tables count it under.
type Token struct {
	Name string
	Len  int
}

// Inventory is the complete token set of one subject.
type Inventory []Token

// Lit builds a fixed token whose length is the length of its spelling.
func Lit(s string) Token { return Token{Name: s, Len: len(s)} }

// Class builds an open-class token counted at length n.
func Class(name string, n int) Token { return Token{Name: name, Len: n} }

// Count returns the total number of tokens in the inventory.
func (inv Inventory) Count() int { return len(inv) }

// CountLen returns the number of tokens of length n.
func (inv Inventory) CountLen(n int) int {
	c := 0
	for _, t := range inv {
		if t.Len == n {
			c++
		}
	}
	return c
}

// Lengths returns the distinct token lengths present, ascending.
func (inv Inventory) Lengths() []int {
	seen := map[int]bool{}
	for _, t := range inv {
		seen[t.Len] = true
	}
	out := make([]int, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// Names returns the set of token names.
func (inv Inventory) Names() map[string]bool {
	out := make(map[string]bool, len(inv))
	for _, t := range inv {
		out[t.Name] = true
	}
	return out
}

// Coverage is the result of matching a set of produced tokens against
// an inventory.
type Coverage struct {
	Inventory Inventory
	Found     map[string]bool
}

// Cover matches found token names against inv, ignoring names not in
// the inventory.
func Cover(inv Inventory, found map[string]bool) Coverage {
	names := inv.Names()
	kept := make(map[string]bool)
	for n := range found {
		if names[n] {
			kept[n] = true
		}
	}
	return Coverage{Inventory: inv, Found: kept}
}

// FoundLen returns how many tokens of length n were found.
func (c Coverage) FoundLen(n int) int {
	cnt := 0
	for _, t := range c.Inventory {
		if t.Len == n && c.Found[t.Name] {
			cnt++
		}
	}
	return cnt
}

// FoundCount returns the total number of inventory tokens found.
func (c Coverage) FoundCount() int { return len(c.Found) }

// Split returns found and total counts for tokens with length <= cut
// and length > cut. The paper's headline aggregates use cut = 3.
func (c Coverage) Split(cut int) (shortFound, shortTotal, longFound, longTotal int) {
	for _, t := range c.Inventory {
		if t.Len <= cut {
			shortTotal++
			if c.Found[t.Name] {
				shortFound++
			}
		} else {
			longTotal++
			if c.Found[t.Name] {
				longFound++
			}
		}
	}
	return
}

// Missing returns the names of inventory tokens not found, sorted.
func (c Coverage) Missing() []string {
	var out []string
	for _, t := range c.Inventory {
		if !c.Found[t.Name] {
			out = append(out, t.Name)
		}
	}
	sort.Strings(out)
	return out
}

// Percent is a safe percentage helper: 0/0 counts as 0.
func Percent(found, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(found) / float64(total)
}
