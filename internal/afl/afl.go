// Package afl implements the AFL-style baseline the paper compares
// against (§5, §6.2): a high-throughput, coverage-guided mutational
// fuzzer. Like AFL it maintains a 64 KiB bucketed edge bitmap, keeps a
// queue of inputs that produced new edge buckets, and mutates queue
// entries with an abbreviated deterministic stage followed by stacked
// "havoc" mutations and splicing. Matching the paper's setup (§5.1),
// the default seed corpus is a single space character, and validity
// of generated inputs is determined by the subject's exit code.
package afl

import (
	"math/rand"
	"time"

	"pfuzzer/internal/stepclock"
	"pfuzzer/internal/subject"
	"pfuzzer/internal/trace"
)

// Config controls an AFL-style campaign.
type Config struct {
	// Seed seeds the mutation RNG.
	Seed int64
	// MaxExecs bounds subject executions (0 = 1e6).
	MaxExecs int
	// Seeds is the initial corpus (nil = a single " ", as in §5.1).
	Seeds [][]byte
	// MaxLen bounds generated inputs (0 = 512).
	MaxLen int
	// Deadline bounds active campaign time — time inside Run/Step,
	// not fleet wait between Steps (0 = none).
	Deadline time.Duration
	// OnValid, if non-nil, observes each new valid input.
	OnValid func(input []byte, execs int)
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.MaxExecs == 0 {
		out.MaxExecs = 1000000
	}
	if out.MaxLen == 0 {
		out.MaxLen = 512
	}
	if len(out.Seeds) == 0 {
		out.Seeds = [][]byte{[]byte(" ")}
	}
	return out
}

// Valid is one distinct valid input found during the campaign.
type Valid struct {
	Input []byte
	Exec  int
}

// Result summarizes a campaign.
type Result struct {
	Valids   []Valid
	Execs    int
	QueueLen int
	Coverage map[uint32]bool // union block coverage of the valid inputs
	Elapsed  time.Duration
}

// ValidInputs returns the raw valid inputs.
func (r *Result) ValidInputs() [][]byte {
	out := make([][]byte, len(r.Valids))
	for i := range r.Valids {
		out[i] = r.Valids[i].Input
	}
	return out
}

// bucket classifies a raw edge count into AFL's eight hit buckets.
func bucket(n byte) byte {
	switch {
	case n == 0:
		return 0
	case n == 1:
		return 1
	case n == 2:
		return 2
	case n == 3:
		return 4
	case n <= 7:
		return 8
	case n <= 15:
		return 16
	case n <= 31:
		return 32
	case n <= 127:
		return 64
	default:
		return 128
	}
}

// Fuzzer is one AFL-style campaign over a subject.
type Fuzzer struct {
	cfg  Config
	prog subject.Program
	rng  *rand.Rand

	virgin    []byte // seen edge buckets
	queue     [][]byte
	seenValid map[string]struct{}
	res       Result
	clock     stepclock.Clock // active stepping time (Result.Elapsed, Deadline)
	began     bool
	execCap   int // current step's execution bound
}

// New prepares a fuzzer for prog.
func New(prog subject.Program, cfg Config) *Fuzzer {
	c := cfg.withDefaults()
	return &Fuzzer{
		cfg:  c,
		prog: prog,
		//pdlint:ignore enginerand -- the baseline AFL engine is not snapshot-resumable; its per-campaign seeded RNG needs no draw counting
		rng:       rand.New(rand.NewSource(c.Seed)),
		virgin:    make([]byte, trace.EdgeMapSize),
		seenValid: make(map[string]struct{}),
	}
}

// Run executes the campaign.
func (f *Fuzzer) Run() *Result {
	for {
		if _, more := f.Step(f.cfg.MaxExecs); !more {
			break
		}
	}
	return f.Result()
}

// Step advances the campaign by up to n executions and reports how
// many were spent and whether budget remains — the resumable-campaign
// surface the fleet orchestrator (internal/campaign) multiplexes.
// Unlike the deterministic serial pFuzzer engine, an interrupted
// mutation stage is abandoned at the step boundary and a fresh queue
// entry drawn on resume, so a sliced AFL campaign is deterministic
// for a fixed slicing but not slice-invariant.
func (f *Fuzzer) Step(n int) (spent int, more bool) {
	f.clock.StepBegin()
	before := f.res.Execs
	f.execCap = f.res.Execs + n
	if f.execCap > f.cfg.MaxExecs {
		f.execCap = f.cfg.MaxExecs
	}
	if !f.began {
		f.began = true
		f.res.Coverage = make(map[uint32]bool)
		for _, s := range f.cfg.Seeds {
			f.execute(append([]byte{}, s...), true)
		}
	}
	for !f.done() {
		if len(f.queue) == 0 {
			// Degrade to blind fuzzing on a random input, as AFL does
			// without instrumentation feedback.
			f.execute(f.randomInput(), true)
			continue
		}
		entry := f.queue[f.rng.Intn(len(f.queue))]
		f.deterministic(entry)
		f.havoc(entry)
	}
	f.res.QueueLen = len(f.queue)
	f.res.Elapsed = f.clock.StepEnd()
	return f.res.Execs - before, !f.over()
}

// Result returns the campaign's live result (final once over).
func (f *Fuzzer) Result() *Result { return &f.res }

// done bounds the current step; over bounds the whole campaign.
func (f *Fuzzer) done() bool {
	if f.res.Execs >= f.execCap {
		return true
	}
	return f.deadlineHit()
}

func (f *Fuzzer) over() bool {
	if f.res.Execs >= f.cfg.MaxExecs {
		return true
	}
	return f.deadlineHit()
}

// deadlineHit compares the Deadline against active stepping time —
// completed Steps plus the running one — so fleet queue wait between
// Steps does not cut the campaign short.
func (f *Fuzzer) deadlineHit() bool {
	return f.clock.Exceeded(f.cfg.Deadline)
}

// execute runs one input, updates the edge map, and queues the input
// if it produced new coverage. force queues it unconditionally.
func (f *Fuzzer) execute(input []byte, force bool) {
	if f.done() {
		return
	}
	f.res.Execs++
	rec := subject.Execute(f.prog, input, trace.Options{Edges: true})
	interesting := force
	for i, n := range rec.Edges {
		b := bucket(n)
		if b&^f.virgin[i] != 0 {
			f.virgin[i] |= b
			interesting = true
		}
	}
	if interesting {
		f.queue = append(f.queue, append([]byte{}, input...))
		// Valid inputs enter the analysis corpus only when they are
		// interesting: an input exercising a new token necessarily
		// takes a new parser edge, and this keeps the corpus bounded
		// on subjects where almost all random inputs are valid.
		if rec.Accepted() {
			f.recordValid(input)
		}
	}
}

// recordValid re-traces a valid input with block recording to
// attribute coverage, the way the paper post-processes AFL's corpus
// with gcov (§5.1).
func (f *Fuzzer) recordValid(input []byte) {
	key := string(input)
	if _, dup := f.seenValid[key]; dup {
		return
	}
	f.seenValid[key] = struct{}{}
	f.res.Execs++
	rec := subject.Execute(f.prog, input, trace.Options{Blocks: true})
	//pdlint:ordered -- set union; every visit order yields the same coverage map
	for id := range rec.BlockFirst {
		f.res.Coverage[id] = true
	}
	v := Valid{Input: append([]byte{}, input...), Exec: f.res.Execs}
	f.res.Valids = append(f.res.Valids, v)
	if f.cfg.OnValid != nil {
		f.cfg.OnValid(v.Input, v.Exec)
	}
}

func (f *Fuzzer) randomInput() []byte {
	n := 1 + f.rng.Intn(16)
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(f.rng.Intn(256))
	}
	return out
}

// interestingBytes are AFL's "interesting" 8-bit values plus common
// ASCII structure characters.
var interestingBytes = []byte{0, 1, 16, 32, 64, 100, 127, 128, 255, '\n', '\t', ' ', '"', '\''}

// deterministic runs an abbreviated deterministic stage on entry:
// walking bitflips, arithmetic, and interesting-byte overwrites.
func (f *Fuzzer) deterministic(entry []byte) {
	if len(entry) > 64 {
		return // AFL skips deterministic stages on large inputs
	}
	buf := append([]byte{}, entry...)
	for i := 0; i < len(buf) && !f.done(); i++ {
		orig := buf[i]
		for bit := 0; bit < 8; bit++ {
			buf[i] = orig ^ (1 << bit)
			f.execute(buf, false)
		}
		for _, d := range []int{1, -1, 2, -2, 4, -4} {
			buf[i] = byte(int(orig) + d)
			f.execute(buf, false)
		}
		for _, v := range interestingBytes {
			buf[i] = v
			f.execute(buf, false)
		}
		buf[i] = orig
	}
}

// havoc applies stacked random mutations, occasionally splicing in a
// second queue entry.
func (f *Fuzzer) havoc(entry []byte) {
	const rounds = 256
	for r := 0; r < rounds && !f.done(); r++ {
		buf := append([]byte{}, entry...)
		if len(f.queue) > 1 && f.rng.Intn(8) == 0 {
			other := f.queue[f.rng.Intn(len(f.queue))]
			buf = f.splice(buf, other)
		}
		stack := 1 << (1 + f.rng.Intn(6)) // 2..64 stacked ops
		for s := 0; s < stack; s++ {
			buf = f.mutateOnce(buf)
		}
		if len(buf) == 0 || len(buf) > f.cfg.MaxLen {
			continue
		}
		f.execute(buf, false)
	}
}

func (f *Fuzzer) splice(a, b []byte) []byte {
	if len(a) == 0 || len(b) == 0 {
		return a
	}
	ca := f.rng.Intn(len(a))
	cb := f.rng.Intn(len(b))
	out := append([]byte{}, a[:ca]...)
	return append(out, b[cb:]...)
}

// mutateOnce applies one random havoc operation.
func (f *Fuzzer) mutateOnce(buf []byte) []byte {
	if len(buf) == 0 {
		return []byte{byte(f.rng.Intn(256))}
	}
	switch f.rng.Intn(8) {
	case 0: // flip a random bit
		i := f.rng.Intn(len(buf))
		buf[i] ^= 1 << f.rng.Intn(8)
	case 1: // set a random byte
		buf[f.rng.Intn(len(buf))] = byte(f.rng.Intn(256))
	case 2: // set an interesting byte
		buf[f.rng.Intn(len(buf))] = interestingBytes[f.rng.Intn(len(interestingBytes))]
	case 3: // arithmetic
		i := f.rng.Intn(len(buf))
		buf[i] = byte(int(buf[i]) + f.rng.Intn(35) - 17)
	case 4: // delete a block
		if len(buf) > 1 {
			i := f.rng.Intn(len(buf))
			n := 1 + f.rng.Intn(min(8, len(buf)-i))
			buf = append(buf[:i], buf[i+n:]...)
		}
	case 5: // insert a random byte
		i := f.rng.Intn(len(buf) + 1)
		buf = append(buf[:i], append([]byte{byte(f.rng.Intn(256))}, buf[i:]...)...)
	case 6: // clone a block
		if len(buf) < f.cfg.MaxLen {
			src := f.rng.Intn(len(buf))
			n := 1 + f.rng.Intn(min(8, len(buf)-src))
			dst := f.rng.Intn(len(buf) + 1)
			blk := append([]byte{}, buf[src:src+n]...)
			buf = append(buf[:dst], append(blk, buf[dst:]...)...)
		}
	case 7: // overwrite with a block copy
		if len(buf) > 1 {
			src := f.rng.Intn(len(buf))
			dst := f.rng.Intn(len(buf))
			n := 1 + f.rng.Intn(min(4, len(buf)-max(src, dst)))
			copy(buf[dst:dst+n], buf[src:src+n])
		}
	}
	return buf
}
