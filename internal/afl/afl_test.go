package afl

import (
	"testing"

	"pfuzzer/internal/subject"
	"pfuzzer/internal/subjects/cjson"
	"pfuzzer/internal/subjects/csvp"
	"pfuzzer/internal/subjects/ini"
	"pfuzzer/internal/subjects/tinyc"
	"pfuzzer/internal/trace"
)

func TestBucket(t *testing.T) {
	cases := map[byte]byte{0: 0, 1: 1, 2: 2, 3: 4, 5: 8, 9: 16, 20: 32, 100: 64, 200: 128}
	for in, want := range cases {
		if got := bucket(in); got != want {
			t.Errorf("bucket(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestFindsValidInputsOnSimpleSubjects(t *testing.T) {
	for _, prog := range []subject.Program{ini.New(), csvp.New()} {
		f := New(prog, Config{Seed: 1, MaxExecs: 20000})
		res := f.Run()
		if len(res.Valids) == 0 {
			t.Errorf("%s: no valid inputs in 20000 execs", prog.Name())
		}
		for _, v := range res.Valids {
			rec := subject.Execute(prog, v.Input, trace.Options{})
			if !rec.Accepted() {
				t.Errorf("%s: recorded valid input %q is rejected", prog.Name(), v.Input)
			}
		}
	}
}

func TestCoverageGrowsWithBudget(t *testing.T) {
	small := New(cjson.New(), Config{Seed: 1, MaxExecs: 2000}).Run()
	large := New(cjson.New(), Config{Seed: 1, MaxExecs: 50000}).Run()
	if len(large.Coverage) < len(small.Coverage) {
		t.Errorf("coverage shrank with budget: %d -> %d", len(small.Coverage), len(large.Coverage))
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	run := func() (int, int) {
		res := New(tinyc.New(), Config{Seed: 9, MaxExecs: 5000}).Run()
		return len(res.Valids), len(res.Coverage)
	}
	v1, c1 := run()
	v2, c2 := run()
	if v1 != v2 || c1 != c2 {
		t.Errorf("same seed diverged: (%d,%d) vs (%d,%d)", v1, c1, v2, c2)
	}
}

func TestRespectsExecBudget(t *testing.T) {
	res := New(cjson.New(), Config{Seed: 1, MaxExecs: 500}).Run()
	// recordValid adds one re-trace per distinct valid input.
	if res.Execs > 500+len(res.Valids)+1 {
		t.Errorf("Execs = %d exceeds budget 500 by more than the valid re-traces", res.Execs)
	}
}

// TestLongKeywordsUnreachable documents AFL's defining weakness from
// the paper: within a realistic budget, blind mutation does not
// synthesize multi-character keywords on tinyC.
func TestLongKeywordsUnreachable(t *testing.T) {
	res := New(tinyc.New(), Config{Seed: 3, MaxExecs: 50000}).Run()
	for _, v := range res.Valids {
		s := string(v.Input)
		for _, kw := range []string{"while", "else"} {
			if contains(s, kw) {
				t.Logf("note: AFL found %q in %q (rare but possible)", kw, s)
			}
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
